// Package readretry is a from-scratch reproduction of "Reducing Solid-State
// Drive Read Latency by Optimizing Read-Retry" (Park et al., ASPLOS 2021).
//
// The paper proposes two SSD-controller techniques that shorten read-retry
// operations without reducing how many retry steps a read needs:
//
//   - PR² (Pipelined Read-Retry) overlaps consecutive retry steps with the
//     CACHE READ command, removing data transfer and ECC decoding from the
//     retry critical path.
//   - AR² (Adaptive Read-Retry) exploits the large ECC-capability margin of
//     the final retry step to shorten the page-sensing latency tR, choosing
//     a safe tPRE reduction per operating condition from a profiled
//     Read-timing Parameter Table (RPT).
//
// This package is the public facade over the full reproduction stack:
//
//   - a calibrated 3D TLC NAND error model standing in for the paper's 160
//     characterized chips (NewChipFleet, NewLab);
//   - the characterization experiments behind Figures 4b, 5, 7–11 (Lab);
//   - RPT profiling (ProfileRPT);
//   - the read-retry controllers themselves (Scheme, BuildPlan);
//   - an MQSim-style multi-queue SSD simulator (NewSSD) and the Figure
//     14/15 system-level sweeps (Figure14, Figure15), shardable across
//     processes with bit-identical merges (ShardPlan, RunShard,
//     MergeShards) or across machines via the networked coordinator
//     (ServeSweeps, RunWorker, SubmitSweep);
//   - the twelve Table 2 workload generators (Workloads, NewWorkload).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results versus the paper's.
package readretry

import (
	"context"
	"io"
	"net/http"

	"readretry/internal/charz"
	"readretry/internal/chip"
	"readretry/internal/core"
	"readretry/internal/ecc"
	"readretry/internal/experiments"
	"readretry/internal/experiments/cellcache"
	"readretry/internal/experiments/coord"
	"readretry/internal/experiments/shard"
	"readretry/internal/nand"
	"readretry/internal/rpt"
	"readretry/internal/ssd"
	"readretry/internal/ssd/retrymetrics"
	"readretry/internal/trace"
	"readretry/internal/vth"
	"readretry/internal/workload"
)

// Scheme selects a read-retry controller configuration (§7.2).
type Scheme = core.Scheme

// The five evaluated configurations.
const (
	Baseline = core.Baseline // regular read-retry (Figure 12a)
	PR2      = core.PR2      // Pipelined Read-Retry (Figure 12b)
	AR2      = core.AR2      // Adaptive Read-Retry (Figure 13)
	PnAR2    = core.PnAR2    // both combined
	NoRR     = core.NoRR     // ideal SSD without read-retry
)

// ParseScheme converts a configuration name to a Scheme.
func ParseScheme(name string) (Scheme, error) { return core.ParseScheme(name) }

// Plan building (the controllers' operation DAGs) for direct latency
// analysis, as in Figures 12 and 13.
type (
	// Plan is a controller's operation DAG for one page read.
	Plan = core.Plan
	// StepTimings carries the per-operation latencies plans compose.
	StepTimings = core.StepTimings
	// ControllerOptions toggles the ablation variants.
	ControllerOptions = core.Options
)

// BuildPlan constructs the operation DAG for a read needing nrr retry steps.
func BuildPlan(s Scheme, nrr int, t StepTimings, opts ControllerOptions) Plan {
	return core.BuildPlan(s, nrr, t, opts)
}

// PaperStepTimings returns Table 1's timings with the average tR and the
// worst-case-safe 40 % tPRE reduction.
func PaperStepTimings() StepTimings { return experiments.PaperTimings() }

// Chip-model layer.
type (
	// ChipParams are the calibrated NAND error-model constants.
	ChipParams = vth.Params
	// Condition is an operating condition (P/E cycles, retention,
	// temperature).
	Condition = vth.Condition
	// Chip is one behavioral 3D TLC NAND die.
	Chip = chip.Chip
	// ChipFleet is a population of chips sharing a process model.
	ChipFleet = chip.Fleet
	// Geometry describes chip organization.
	Geometry = nand.Geometry
	// Timing holds Table 1's chip timing parameters.
	Timing = nand.Timing
	// Reduction expresses read-timing parameter reductions.
	Reduction = nand.Reduction
)

// ChipModel evaluates the calibrated error model directly: per-page drift,
// final-step error floors, and timing-reduction penalties.
type ChipModel = vth.Model

// PageType identifies a page's bit position within its cell (for TLC:
// LSB/CSB/MSB).
type PageType = nand.PageType

// TLC page types. CSB pages sense three read levels and bound the error
// envelope.
const (
	LSBPage = nand.LSB
	CSBPage = nand.CSB
	MSBPage = nand.MSB
)

// CellKind is the number of bits a NAND cell stores — the geometry axis
// that determines page kinds per wordline, voltage levels, and read-level
// assignments (Geometry.CellBits names one).
type CellKind = nand.CellKind

// The supported cell kinds.
const (
	SLC = nand.SLC // 1 bit, 2 levels
	MLC = nand.MLC // 2 bits, 4 levels
	TLC = nand.TLC // 3 bits, 8 levels — the paper's device
	QLC = nand.QLC // 4 bits, 16 levels
)

// Device names a preset cell-level device configuration the sweeps can
// run on: geometry, error-model calibration, and ECC strength.
type Device = ssd.Device

// The supported device presets.
const (
	// DeviceTLC is the paper's 3D TLC device (the default template).
	DeviceTLC = ssd.DeviceTLC
	// DeviceQLC16 is a 16-level QLC device: steeper drift, thinner
	// margins, a longer retry ladder, and LDPC-class ECC.
	DeviceQLC16 = ssd.DeviceQLC16
)

// Devices lists the supported device presets.
func Devices() []Device { return ssd.Devices() }

// ParseDevice resolves a device preset name (case-insensitive).
func ParseDevice(s string) (Device, error) { return ssd.ParseDevice(s) }

// QLC16ChipParams returns the error-model calibration DeviceQLC16
// installs: the TLC anchors rescaled to 16 levels' thinner margins.
func QLC16ChipParams() ChipParams { return vth.QLC16Params() }

// NewChipModel builds an error model over params with the given
// process-variation seed.
func NewChipModel(params ChipParams, seed uint64) *ChipModel {
	return vth.NewModel(params, seed)
}

// DefaultChipParams returns the model calibrated to the paper's 160-chip
// characterization (DESIGN.md §4 lists the anchors).
func DefaultChipParams() ChipParams { return vth.DefaultParams() }

// DefaultGeometry returns the §7.1 chip organization.
func DefaultGeometry() Geometry { return nand.DefaultGeometry() }

// DefaultTiming returns Table 1.
func DefaultTiming() Timing { return nand.DefaultTiming() }

// NewChipFleet builds the paper-scale population: 160 chips.
func NewChipFleet(seed uint64) *ChipFleet { return chip.DefaultFleet(seed) }

// Characterization laboratory (Figures 4b, 5, 7–11).
type Lab = charz.Lab

// NewLab builds a characterization lab over the default 160-chip fleet,
// sampling sampleReads pages per measured condition.
func NewLab(sampleReads int, seed uint64) *Lab { return charz.DefaultLab(sampleReads, seed) }

// RPT profiling (AR²'s Read-timing Parameter Table, §6.2).
type (
	// RPT is the profiled table.
	RPT = rpt.Table
	// RPTConfig controls profiling (buckets, margin).
	RPTConfig = rpt.Config
)

// DefaultRPTConfig returns the paper's profiling setup: 36 buckets, 14-bit
// safety margin.
func DefaultRPTConfig() RPTConfig { return rpt.DefaultConfig() }

// ProfileRPT profiles a table for the chip population identified by params
// and seed.
func ProfileRPT(params ChipParams, seed uint64, cfg RPTConfig) (*RPT, error) {
	return rpt.Profile(vth.NewModel(params, seed), cfg)
}

// ECC engine.
type ECCEngine = ecc.Engine

// DefaultECC returns the §7.1 engine: 72 bits per 1-KiB codeword in 20 µs.
func DefaultECC() ECCEngine { return ecc.DefaultEngine() }

// BCH is the real codec realizing the engine's capability.
type BCH = ecc.BCH

// NewBCH constructs a binary BCH code over GF(2^m) correcting t bit errors
// in dataBits of payload.
func NewBCH(m, t, dataBits int) (*BCH, error) { return ecc.NewBCH(m, t, dataBits) }

// LDPC is the other ECC family modern controllers deploy (§2.4), with hard
// bit-flipping and soft min-sum decoders.
type LDPC = ecc.LDPC

// NewArrayLDPC constructs a quasi-cyclic array LDPC code with circulant
// size z (an odd prime), j block rows, and l block columns.
func NewArrayLDPC(z, j, l int) (*LDPC, error) { return ecc.NewArrayLDPC(z, j, l) }

// SSD simulation.
type (
	// SSD is one simulated multi-queue device.
	SSD = ssd.SSD
	// SSDConfig assembles a device.
	SSDConfig = ssd.Config
	// SSDStats aggregates one run.
	SSDStats = ssd.Stats
	// Request is one block-I/O trace record.
	Request = trace.Record
	// RetryMetrics is the per-block retry accounting a device collects
	// when SSDConfig.RetryMetrics is on, reachable as SSDStats.Retry —
	// allocation-free during the run, purely observational (latencies are
	// bit-identical with it on or off).
	RetryMetrics = retrymetrics.Metrics
	// RetrySummary is a RetryMetrics digest: device-wide counts, retry-
	// latency attribution, the hottest block, and the top retried pages.
	RetrySummary = retrymetrics.Summary
	// RetryPageStat is one hottest-page entry of a RetrySummary.
	RetryPageStat = retrymetrics.PageStat
)

// DefaultSSDConfig returns the paper's full-size 512-GiB device (§7.1).
func DefaultSSDConfig() SSDConfig { return ssd.DefaultConfig() }

// ExperimentSSDConfig returns the proportionally scaled device the
// reproduction sweeps use.
func ExperimentSSDConfig() SSDConfig { return ssd.ExperimentConfig() }

// NewSSD builds a device.
func NewSSD(cfg SSDConfig) (*SSD, error) { return ssd.New(cfg) }

// Workloads.
type (
	// WorkloadSpec describes one Table 2 workload.
	WorkloadSpec = workload.Spec
	// WorkloadGenerator produces a deterministic request stream.
	WorkloadGenerator = workload.Generator
)

// PageSize is the 16-KiB logical page size requests align to.
const PageSize = workload.PageSize

// Workloads returns the twelve Table 2 workloads.
func Workloads() []WorkloadSpec { return workload.Table2() }

// WorkloadByName returns one Table 2 workload.
func WorkloadByName(name string) (WorkloadSpec, error) { return workload.ByName(name) }

// NewWorkload builds a generator for a spec.
func NewWorkload(spec WorkloadSpec, seed uint64) *WorkloadGenerator {
	return workload.NewGenerator(spec, seed)
}

// System-level sweeps (Figures 14 and 15).
type (
	// SweepConfig parameterizes a Figure 14/15 sweep, including the
	// engine's Parallelism bound and Progress callback.
	SweepConfig = experiments.Config
	// SweepResult holds the measured cells and summary statistics.
	SweepResult = experiments.Result
	// SweepCondition is one (PEC, retention, temperature, device)
	// evaluation point; TempC 0 inherits the device template's
	// temperature, Device "" the base template itself.
	SweepCondition = experiments.Condition
	// SweepTempReduction is one row of SweepResult.ReductionByTemp: a
	// scheme's response-time reduction at one operating temperature.
	SweepTempReduction = experiments.TempReduction
	// SweepDeviceReduction is one row of SweepResult.ReductionByDevice: a
	// scheme's response-time reduction on one device preset.
	SweepDeviceReduction = experiments.DeviceReduction
	// SweepVariant is one configuration column of a sweep.
	SweepVariant = experiments.Variant
	// SweepCell is one measured (workload, condition, configuration) cell.
	SweepCell = experiments.Cell
	// SweepCellSink receives cells in canonical order as the engine
	// releases them (SweepConfig.Sink) — the streaming counterpart of
	// consuming SweepResult.Cells after the fact.
	SweepCellSink = experiments.CellSink
	// SweepCellSinkFunc adapts a function to a SweepCellSink.
	SweepCellSinkFunc = experiments.CellSinkFunc
	// SweepCSVSink streams cells as CSV rows, byte-identical to
	// SweepResult.WriteCSV for the same grid.
	SweepCSVSink = experiments.CSVSink
	// SweepMetricsCSVSink streams one retry-metrics row per cell
	// (SweepConfig.MetricsSink; requires SweepConfig.Base.RetryMetrics),
	// byte-identical to SweepResult.WriteMetricsCSV for the same grid.
	SweepMetricsCSVSink = experiments.MetricsCSVSink
	// SweepCache is the content-addressed per-cell measurement cache
	// RunSweep consults (SweepConfig.Cache): re-running a grown grid only
	// simulates new cells.
	SweepCache = cellcache.Cache
	// SweepMeasurement is one cached raw cell measurement.
	SweepMeasurement = cellcache.Measurement
)

// NewSweepCSVSink writes the CSV header to w and returns a sink that
// streams one row per cell as the sweep releases it (temperature-less
// schema; see NewSweepCSVSinkFor).
func NewSweepCSVSink(w io.Writer) (*SweepCSVSink, error) { return experiments.NewCSVSink(w) }

// NewSweepCSVSinkFor is NewSweepCSVSink with the CSV schema chosen from
// the sweep configuration: grids that sweep temperature (SweepConfig.Temps
// or per-condition TempC) gain a temp_c column, matching what the buffered
// SweepResult.WriteCSV emits for the same grid.
func NewSweepCSVSinkFor(cfg SweepConfig, w io.Writer) (*SweepCSVSink, error) {
	return experiments.NewCSVSinkFor(cfg, w)
}

// NewSweepMetricsCSVSink writes the retry-metrics CSV header to w and
// returns the streaming per-cell metrics sink for SweepConfig.MetricsSink
// (temperature-less single-device schema; see NewSweepMetricsCSVSinkFor).
func NewSweepMetricsCSVSink(w io.Writer) (*SweepMetricsCSVSink, error) {
	return experiments.NewMetricsCSVSink(w)
}

// NewSweepMetricsCSVSinkFor is NewSweepMetricsCSVSink with the schema
// chosen from the sweep configuration, mirroring NewSweepCSVSinkFor.
func NewSweepMetricsCSVSinkFor(cfg SweepConfig, w io.Writer) (*SweepMetricsCSVSink, error) {
	return experiments.NewMetricsCSVSinkFor(cfg, w)
}

// CrossTemps expands a condition grid across an operating-temperature
// axis: every condition repeats once per temperature with its TempC set —
// the 3-D PEC × retention × temperature grid SweepConfig.Temps builds
// implicitly.
func CrossTemps(conds []SweepCondition, temps []float64) []SweepCondition {
	return experiments.CrossTemps(conds, temps)
}

// CrossDevices expands a condition grid across a device axis: every
// condition repeats once per preset with its Device set — the grid
// SweepConfig.Devices builds implicitly, putting TLC and QLC cells side
// by side in one sweep.
func CrossDevices(conds []SweepCondition, devices []Device) []SweepCondition {
	return experiments.CrossDevices(conds, devices)
}

// NewSweepCache returns an in-memory per-cell cache, living as long as
// the process.
func NewSweepCache() SweepCache { return cellcache.Memory() }

// NewDiskSweepCache returns a per-cell cache persisted under dir (created
// if absent) with an in-memory tier on top: a second identical sweep —
// even from a new process — performs zero simulations.
func NewDiskSweepCache(dir string) (SweepCache, error) { return cellcache.Disk(dir) }

// DefaultSweepConfig returns the full Figure 14/15 sweep.
func DefaultSweepConfig() SweepConfig { return experiments.DefaultConfig() }

// QuickSweepConfig returns a reduced sweep for quick runs.
func QuickSweepConfig() SweepConfig { return experiments.QuickConfig() }

// Figure14 runs the five-configuration response-time sweep.
func Figure14(cfg SweepConfig) (*SweepResult, error) { return experiments.Figure14(cfg) }

// Figure15 runs the PSO comparison sweep.
func Figure15(cfg SweepConfig) (*SweepResult, error) { return experiments.Figure15(cfg) }

// Figure14Variants returns the five §7.2 configurations in presentation
// order.
func Figure14Variants() []SweepVariant { return experiments.Figure14Variants() }

// Figure15Variants returns the PSO comparison columns.
func Figure15Variants() []SweepVariant { return experiments.Figure15Variants() }

// HistoryVariant returns the history-seeded PnAR2 column ("PnAR2+H"):
// PnAR2 with each block's retry-ladder start seeded from that block's
// most recent successful retry outcome. Append it to Figure14Variants to
// grow the grid; the default grids deliberately exclude it.
func HistoryVariant() SweepVariant { return experiments.HistoryVariant() }

// Sweep sharding: distributing one grid across processes (or machines
// sharing a filesystem) and merging the outputs back bit-identically.
type (
	// SweepShardPlan partitions a sweep's canonical cell-index space into
	// balanced round-robin shards.
	SweepShardPlan = shard.Plan
	// SweepShardManifest is one shard's self-describing work unit: config
	// hash, cache-key schema, and the assigned cell indices. It round-trips
	// through JSON (Plan.WriteManifests / shard.ReadManifest).
	SweepShardManifest = shard.Manifest
	// SweepShardRecord is a shard's completion record: its manifest plus
	// every assigned cell's raw measurement.
	SweepShardRecord = shard.Record
	// SweepMissingCellsError is what MergeShards returns when shard
	// outputs do not cover the grid: the exact missing cells, by
	// canonical index and human label.
	SweepMissingCellsError = shard.MissingCellsError
)

// ShardPlan deterministically partitions the sweep into n shards: cell
// index i goes to shard i mod n, spreading expensive high-PEC cells
// evenly. Any n ≥ 1 works; n beyond the grid size leaves trailing shards
// empty.
func ShardPlan(cfg SweepConfig, variants []SweepVariant, n int) (*SweepShardPlan, error) {
	return shard.NewPlan(cfg, variants, n)
}

// RunShard executes one shard of a plan through the sweep engine: only the
// manifest's cells are simulated (cfg.Cache hits are reused, making
// interrupted shards resumable), and when dir is non-empty the manifest
// and an atomic completion record are persisted there for MergeShards.
// The manifest must have been planned for exactly this cfg and variants —
// a config-hash mismatch is refused before any simulation.
func RunShard(ctx context.Context, cfg SweepConfig, variants []SweepVariant, m SweepShardManifest, dir string) (*SweepShardRecord, error) {
	return shard.Run(ctx, cfg, variants, m, dir)
}

// MergeShards reassembles a full sweep from shard outputs: completion
// records in dir first, then cache for any cells records do not cover
// (either source may be absent). If the grid is fully covered the result
// is bit-identical — including CSV bytes — to an unsharded RunSweep;
// otherwise it fails with a *SweepMissingCellsError naming every missing
// cell.
func MergeShards(cfg SweepConfig, variants []SweepVariant, dir string, cache SweepCache) (*SweepResult, error) {
	return shard.Merge(cfg, variants, dir, cache)
}

// RunSweep executes an arbitrary (workload × condition × variant) grid on
// the parallel sweep engine — three-dimensional when SweepConfig.Temps
// crosses the conditions with a temperature axis: cells fan out over a
// worker pool bounded by
// cfg.Parallelism, each workload's trace is generated once and shared, and
// the result is bit-identical to a serial run of the same cfg. ctx cancels
// the sweep; cfg.Progress observes completed cells. cfg.Sink streams the
// cells themselves in canonical order as their stripes complete (see
// NewSweepCSVSink), and cfg.Cache (see NewSweepCache, NewDiskSweepCache)
// skips simulation for every cell whose content-addressed measurement is
// already known.
func RunSweep(ctx context.Context, cfg SweepConfig, variants []SweepVariant) (*SweepResult, error) {
	return experiments.RunSweep(ctx, cfg, variants)
}

// Networked sweep coordination: the same sharded grids served over HTTP
// with lease/heartbeat fault tolerance — workers that crash mid-shard are
// re-leased after a TTL, completions are idempotent, and the merged result
// is bit-identical to a single-process RunSweep.
type (
	// SweepCoordinator owns the shard work queue: it leases shards to
	// workers, expires leases whose heartbeats stop, merges completion
	// records incrementally, and finalizes each job into a SweepResult.
	SweepCoordinator = coord.Coordinator
	// SweepCoordinatorOptions configures a coordinator (lease TTL, shared
	// cell cache, injectable clock).
	SweepCoordinatorOptions = coord.Options
	// SweepSpec is the self-contained wire form of one sweep submission:
	// everything a worker needs to rebuild the SweepConfig and variants.
	SweepSpec = coord.Spec
	// SweepLease is one granted shard: manifest, spec, TTL, and deadline.
	SweepLease = coord.Lease
	// SweepJobStatus is a job's observable progress.
	SweepJobStatus = coord.JobStatus
	// SweepSubmitReceipt acknowledges a submission: job ID and shard count.
	SweepSubmitReceipt = coord.SubmitReceipt
	// SweepWorker is the configurable pull loop behind RunWorker.
	SweepWorker = coord.Worker
	// SweepClient speaks the coordinator's HTTP protocol directly.
	SweepClient = coord.Client
	// SweepForeignRecordError is the typed rejection a completion record
	// earns when its config hash matches no submitted job.
	SweepForeignRecordError = coord.ForeignRecordError
)

// DefaultLeaseTTL is how long a shard lease survives without a heartbeat
// before the coordinator re-leases it.
const DefaultLeaseTTL = coord.DefaultLeaseTTL

// NewSweepCoordinator builds an in-process coordinator; serve it with
// SweepCoordinatorHandler (or use ServeSweeps for the one-call daemon).
func NewSweepCoordinator(opts SweepCoordinatorOptions) *SweepCoordinator { return coord.New(opts) }

// SweepCoordinatorHandler returns the coordinator's HTTP handler, for
// mounting on a server the caller owns.
func SweepCoordinatorHandler(c *SweepCoordinator) http.Handler { return coord.NewServer(c).Handler() }

// SweepSpecOf captures a sweep configuration and variants as the wire Spec
// a coordinator submission carries.
func SweepSpecOf(cfg SweepConfig, variants []SweepVariant) SweepSpec {
	return coord.SpecOf(cfg, variants)
}

// ServeSweeps runs a sweep coordinator on addr until ctx ends: workers
// pull shards with RunWorker, clients submit jobs with SubmitSweep, and
// an expiry loop re-leases shards whose workers stop heartbeating. opts
// zero value serves with DefaultLeaseTTL and no shared cache.
func ServeSweeps(ctx context.Context, addr string, opts SweepCoordinatorOptions) error {
	return coord.Serve(ctx, addr, opts)
}

// RunWorker pulls and executes sweep shards from the coordinator at addr
// until it drains or ctx ends. cache (see NewDiskSweepCache) makes a
// killed worker resumable: after a restart only the cells the crash lost
// are re-simulated. parallelism 0 means the engine default; logf may be
// nil.
func RunWorker(ctx context.Context, addr string, cache SweepCache, parallelism int, logf func(format string, args ...interface{})) error {
	return coord.RunWorker(ctx, addr, cache, parallelism, logf)
}

// SubmitSweep submits one sweep to the coordinator at addr, waits for
// workers to complete it, and returns the merged result — bit-identical
// to RunSweep of the same cfg and variants.
func SubmitSweep(ctx context.Context, cfg SweepConfig, variants []SweepVariant, addr string, shards int) (*SweepResult, error) {
	return coord.SubmitSweep(ctx, addr, cfg, variants, shards)
}

// Coordinator durability: the crash-safe state journal and the transport
// fault-tolerance knobs (DESIGN.md §12).
type (
	// SweepRecoveryStats summarizes what RecoverSweepCoordinator replayed:
	// jobs, completion records, merged cells, and whether a torn final
	// journal entry (an unacknowledged append the crash interrupted) was
	// discarded.
	SweepRecoveryStats = coord.RecoveryStats
	// SweepRetryPolicy bounds a SweepClient's retry loop: attempts,
	// exponential backoff base/cap, and jitter. Transport errors and 5xx
	// refusals are retried (every protocol mutation is idempotent); typed
	// protocol errors never are.
	SweepRetryPolicy = coord.RetryPolicy
	// SweepDiskCache is the concrete disk tier behind NewDiskSweepCache,
	// exposing its integrity surface: per-entry CRC-32C checksums,
	// CorruptCount, and quarantine-on-corruption (corrupt entries move to
	// a quarantine subdirectory and degrade to recomputable misses).
	SweepDiskCache = cellcache.DiskCache
)

// RecoverSweepCoordinator builds a coordinator whose durable state lives
// under stateDir: every submission and accepted completion record is
// appended to an fsync'd journal before it is acknowledged, and this call
// replays that journal (plus opts.Cache) into a fresh coordinator — a
// SIGKILL'd coordinator restarted over the same stateDir resumes every
// job with zero lost work and zero duplicate simulation. Leases are
// deliberately not recovered (workers re-pull after their heartbeats are
// rejected). Close the returned coordinator to flush and release the
// journal.
func RecoverSweepCoordinator(stateDir string, opts SweepCoordinatorOptions) (*SweepCoordinator, SweepRecoveryStats, error) {
	return coord.Recover(stateDir, opts)
}
