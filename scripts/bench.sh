#!/usr/bin/env bash
# bench.sh — run the read-path and sweep benchmarks and record the results
# as JSON, starting the repository's performance trajectory.
#
# Usage:
#   scripts/bench.sh [output.json] [benchtime]
#
# Defaults: the next BENCH_PR<n>.json after the highest one committed in
# the repository root (BENCH_PR1.json when none exist), -benchtime 5x. The
# JSON maps each benchmark to {ns_per_op, bytes_per_op, allocs_per_op};
# custom metrics (mean_nrr, workers, …) are ignored. Compare a fresh run
# against the latest committed BENCH_PR*.json to spot regressions.
set -euo pipefail

cd "$(dirname "$0")/.."

# Without an explicit output, continue the BENCH_PR<n>.json trajectory one
# past the highest number present, so the default never overwrites a
# committed baseline.
next_bench_out() {
  local latest
  latest=$(ls BENCH_PR*.json 2>/dev/null | sed 's/[^0-9]*//g' | sort -n | tail -1)
  echo "BENCH_PR$((${latest:-0} + 1)).json"
}

out="${1:-$(next_bench_out)}"
macrotime="${2:-5x}"

# Nanosecond-scale benchmarks need a time budget to converge; whole-cell
# benchmarks need a small fixed iteration count to stay affordable.
micro=$(go test . -run NONE \
  -bench 'BenchmarkReadPath|BenchmarkVthModelRead' \
  -benchtime 2s -benchmem)
macro=$(go test . -run NONE \
  -bench 'BenchmarkSweepCell|BenchmarkSweepSerial|BenchmarkSweepParallel|BenchmarkSweepTemperatureGrid|BenchmarkSweepQLCGrid|BenchmarkSweepSharded|BenchmarkSSDSimulationThroughput' \
  -benchtime "$macrotime" -benchmem)
raw="$micro
$macro"

echo "$raw"

echo "$raw" | awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix if present
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")     ns = $(i-1)
      if ($i == "B/op")      bytes = $(i-1)
      if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns != "") {
      if (n++) printf ",\n"
      printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
    }
  }
  BEGIN { printf "{\n" }
  END   { printf "\n}\n" }
' >"$out"

echo "wrote $out"
