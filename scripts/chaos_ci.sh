#!/usr/bin/env bash
# Durability end-to-end check for the coordinator's crash-safe state
# journal: a -serve coordinator with a -state-dir is SIGKILLed mid-run —
# no cleanup, no flush, no goodbye — and restarted over the same state
# dir. The restart must replay the journal (the log proves recovered
# cells were carried across the crash, i.e. finished work was not
# re-simulated), the workers must ride out the outage on their retry
# budgets, and the merged CSV the restarted coordinator renders must be
# byte-identical to a single-process run of the same sweep.
#
# Usage: scripts/chaos_ci.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d /tmp/chaos-ci.XXXXXX)}"
mkdir -p "$WORK"
PORT="${CHAOS_CI_PORT:-9737}"
ADDR="127.0.0.1:$PORT"
STATE="$WORK/state"

echo "== chaos_ci: workdir $WORK, coordinator on $ADDR, state dir $STATE"
go build -o "$WORK/repro" ./cmd/repro

W3_PID=""
SERVE2_PID=""
cleanup() {
  kill "$W1_PID" "$W2_PID" "$W3_PID" "$SERVE_PID" "$SERVE2_PID" 2>/dev/null || true
}
trap cleanup EXIT

echo "== chaos_ci: single-process reference sweep"
"$WORK/repro" -only fig14 -progress=false -csv "$WORK/single" > /dev/null

echo "== chaos_ci: starting journaled coordinator"
"$WORK/repro" -only fig14 -progress=false \
  -serve "$ADDR" -serve-shards 6 -lease-ttl 3s -state-dir "$STATE" \
  -csv "$WORK/merged" > "$WORK/serve1.out" 2> "$WORK/serve1.err" &
SERVE_PID=$!

echo "== chaos_ci: starting two workers over a shared crash-resume cache"
"$WORK/repro" -worker "$ADDR" -cache-dir "$WORK/worker-cache" 2> "$WORK/w1.err" &
W1_PID=$!
"$WORK/repro" -worker "$ADDR" -cache-dir "$WORK/worker-cache" 2> "$WORK/w2.err" &
W2_PID=$!

# Kill only once finished work is actually at stake: wait until at least
# one completed shard's record has hit the journal (but the run is not
# over), then model a coordinator machine loss: SIGKILL, mid-run.
JOURNAL="$STATE/coordinator.journal"
for _ in $(seq 1 240); do
  if [ "$(grep -c '"type":"complete"' "$JOURNAL" 2>/dev/null || true)" -ge 1 ]; then
    break
  fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "chaos_ci: coordinator finished before any kill point was reached" >&2
    exit 1
  fi
  sleep 0.5
done
if [ "$(grep -c '"type":"complete"' "$JOURNAL" 2>/dev/null || true)" -lt 1 ]; then
  echo "chaos_ci: no completion record reached the journal in time" >&2
  exit 1
fi
echo "== chaos_ci: SIGKILLing coordinator (pid $SERVE_PID) mid-run"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

echo "== chaos_ci: restarting coordinator from $STATE"
"$WORK/repro" -only fig14 -progress=false \
  -serve "$ADDR" -serve-shards 6 -lease-ttl 3s -state-dir "$STATE" \
  -csv "$WORK/merged" > "$WORK/serve2.out" 2> "$WORK/serve2.err" &
SERVE2_PID=$!

# The original workers bridge the outage on their retry/gone budgets; a
# third worker is the backstop in case the restart lost the timing race
# against their "coordinator gone" streaks.
"$WORK/repro" -worker "$ADDR" -cache-dir "$WORK/worker-cache" 2> "$WORK/w3.err" &
W3_PID=$!

if ! wait "$SERVE2_PID"; then
  echo "chaos_ci: restarted coordinator failed" >&2
  sed 's/^/  serve2: /' "$WORK/serve2.err" >&2
  exit 1
fi
SERVE2_PID=""
wait "$W1_PID" "$W2_PID" "$W3_PID" 2>/dev/null || true

echo "== chaos_ci: checking the restart replayed journaled work"
RECOVERED_LINE="$(grep 'recovered state' "$WORK/serve2.err" || true)"
if [ -z "$RECOVERED_LINE" ]; then
  echo "chaos_ci: restarted coordinator never reported a journal recovery" >&2
  sed 's/^/  serve2: /' "$WORK/serve2.err" >&2
  exit 1
fi
echo "  $RECOVERED_LINE"
RECOVERED_CELLS="$(printf '%s\n' "$RECOVERED_LINE" | sed -n 's/.* \([0-9][0-9]*\) cells recovered.*/\1/p')"
if [ -z "$RECOVERED_CELLS" ] || [ "$RECOVERED_CELLS" -eq 0 ]; then
  echo "chaos_ci: journal replay recovered 0 cells — the crash lost finished work" >&2
  exit 1
fi

echo "== chaos_ci: diffing merged CSV against the single-process reference"
diff "$WORK/single/fig14.csv" "$WORK/merged/fig14.csv"
echo "== chaos_ci: PASS — byte-identical after coordinator SIGKILL + journal recovery ($RECOVERED_CELLS cells carried across the crash)"
