#!/usr/bin/env bash
# Lint gate: build and run reprolint — the determinism / durability /
# locking invariant suite (DESIGN.md §13) — over every package, both
# standalone and through go vet's -vettool driver, then run govulncheck
# when the toolchain has it. Exits non-zero on any finding, so CI (and a
# pre-push hook) can use it as a single yes/no.
#
# Usage: scripts/lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d /tmp/reprolint.XXXXXX)/reprolint"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

echo "== lint: building reprolint"
go build -o "$BIN" ./cmd/reprolint

echo "== lint: reprolint (standalone) over ./..."
"$BIN" ./...

echo "== lint: reprolint as go vet -vettool"
go vet -vettool="$BIN" ./...

# govulncheck is optional tooling: run it where available (CI installs
# it; offline dev containers may not have it), never fail for lack of it.
if command -v govulncheck >/dev/null 2>&1; then
  echo "== lint: govulncheck"
  govulncheck ./...
else
  echo "== lint: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi

echo "== lint: clean"
