#!/usr/bin/env bash
# Fault-tolerance end-to-end check for the networked sweep coordinator:
# a -serve coordinator over a fixed port, two -worker processes sharing
# one crash-resume cache, one worker SIGKILLed mid-run. The survivor
# must pick up the dead worker's re-leased shards and the merged CSV the
# coordinator renders must be byte-identical to a single-process run of
# the same sweep.
#
# Usage: scripts/coord_ci.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d /tmp/coord-ci.XXXXXX)}"
mkdir -p "$WORK"
PORT="${COORD_CI_PORT:-9736}"
ADDR="127.0.0.1:$PORT"

echo "== coord_ci: workdir $WORK, coordinator on $ADDR"
go build -o "$WORK/repro" ./cmd/repro

cleanup() {
  kill "$W1_PID" "$W2_PID" "$SERVE_PID" 2>/dev/null || true
}
trap cleanup EXIT

echo "== coord_ci: single-process reference sweep"
"$WORK/repro" -only fig14 -progress=false -csv "$WORK/single" > /dev/null

echo "== coord_ci: starting coordinator"
"$WORK/repro" -only fig14 -progress=false \
  -serve "$ADDR" -serve-shards 6 -lease-ttl 3s \
  -csv "$WORK/merged" > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVE_PID=$!

echo "== coord_ci: starting two workers over a shared crash-resume cache"
"$WORK/repro" -worker "$ADDR" -cache-dir "$WORK/worker-cache" 2> "$WORK/w1.err" &
W1_PID=$!
"$WORK/repro" -worker "$ADDR" -cache-dir "$WORK/worker-cache" 2> "$WORK/w2.err" &
W2_PID=$!

# Let the workers lease and get partway into their shards, then model a
# machine loss: SIGKILL — no cleanup, no completion record, no goodbye.
sleep 4
echo "== coord_ci: SIGKILLing worker 1 (pid $W1_PID) mid-run"
kill -9 "$W1_PID"

# The coordinator exits once its own sweep completes; the surviving
# worker must drain everything, including the re-leased shards.
if ! wait "$SERVE_PID"; then
  echo "coord_ci: coordinator failed" >&2
  sed 's/^/  serve: /' "$WORK/serve.err" >&2
  exit 1
fi
wait "$W2_PID" || true

echo "== coord_ci: diffing merged CSV against the single-process reference"
diff "$WORK/single/fig14.csv" "$WORK/merged/fig14.csv"
echo "== coord_ci: PASS — byte-identical after mid-run worker kill"
