module readretry

go 1.21
