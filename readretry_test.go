package readretry_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"readretry"
)

// These tests exercise the public facade exactly the way a downstream user
// would, keeping the exported API honest.

func TestFacadeChipCharacterization(t *testing.T) {
	lab := readretry.NewLab(1500, 1)
	h := lab.RetrySteps(2000, 12, 30)
	if h.Mean < 15 {
		t.Errorf("facade lab: mean N_RR at worst case = %.1f", h.Mean)
	}
}

func TestFacadePlanLatencies(t *testing.T) {
	tm := readretry.PaperStepTimings()
	base := readretry.BuildPlan(readretry.Baseline, 8, tm, readretry.ControllerOptions{})
	pr := readretry.BuildPlan(readretry.PR2, 8, tm, readretry.ControllerOptions{})
	if pr.Latency() >= base.Latency() {
		t.Error("PR2 should beat the baseline through the facade too")
	}
}

func TestFacadeParseScheme(t *testing.T) {
	s, err := readretry.ParseScheme("PnAR2")
	if err != nil || s != readretry.PnAR2 {
		t.Errorf("ParseScheme = %v, %v", s, err)
	}
}

func TestFacadeRPT(t *testing.T) {
	table, err := readretry.ProfileRPT(readretry.DefaultChipParams(), 1, readretry.DefaultRPTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if lvl := table.Lookup(2000, 12); lvl != 6 {
		t.Errorf("worst-case RPT level = %d, want 6 (40%%)", lvl)
	}
}

func TestFacadeEndToEndSimulation(t *testing.T) {
	cfg := readretry.ExperimentSSDConfig()
	cfg.Geometry.BlocksPerPlane = 24
	cfg.Geometry.PagesPerBlock = 48
	cfg.GCThresholdBlocks = 3
	cfg.PreconditionPages = cfg.TotalPages() * 7 / 10
	cfg.Scheme = readretry.PnAR2
	cfg.PEC, cfg.RetentionMonths = 1000, 6

	spec, err := readretry.WorkloadByName("YCSB-C")
	if err != nil {
		t.Fatal(err)
	}
	spec.FootprintPages = cfg.TotalPages() / 2
	recs := readretry.NewWorkload(spec, 3).Generate(600)

	dev, err := readretry.NewSSD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dev.Run(recs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 600 {
		t.Errorf("completed %d, want 600", st.Completed)
	}
}

func TestFacadeStreamingCachedSweep(t *testing.T) {
	cfg := readretry.QuickSweepConfig()
	cfg.Workloads = []string{"YCSB-C"}
	cfg.Conditions = []readretry.SweepCondition{{PEC: 2000, Months: 6}}
	cfg.Requests = 400
	cfg.Parallelism = 0
	cfg.Cache = readretry.NewSweepCache()

	var streamed bytes.Buffer
	sink, err := readretry.NewSweepCSVSink(&streamed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sink = sink
	cold, err := readretry.RunSweep(context.Background(), cfg, readretry.Figure14Variants())
	if err != nil {
		t.Fatal(err)
	}

	var buffered bytes.Buffer
	if err := cold.WriteCSV(&buffered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), buffered.Bytes()) {
		t.Error("facade streaming CSV differs from buffered WriteCSV")
	}

	// Warm the same cache: identical result, served without simulating.
	cfg.Sink = nil
	warm, err := readretry.RunSweep(context.Background(), cfg, readretry.Figure14Variants())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("cached facade re-run differs from the cold run")
	}
}

func TestFacadeShardedSweep(t *testing.T) {
	cfg := readretry.QuickSweepConfig()
	cfg.Workloads = []string{"YCSB-C", "stg_0"}
	cfg.Conditions = []readretry.SweepCondition{{PEC: 2000, Months: 6}}
	cfg.Requests = 400
	variants := readretry.Figure14Variants()

	unsharded, err := readretry.RunSweep(context.Background(), cfg, variants)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := readretry.ShardPlan(cfg, variants, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, m := range plan.Shards {
		if _, err := readretry.RunShard(context.Background(), cfg, variants, m, dir); err != nil {
			t.Fatalf("shard %d: %v", m.Index, err)
		}
	}
	merged, err := readretry.MergeShards(cfg, variants, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unsharded, merged) {
		t.Error("facade shard merge differs from the unsharded run")
	}
	var a, b bytes.Buffer
	if err := unsharded.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("facade shard merge CSV differs from the unsharded run")
	}

	// Merging only a subset fails with the exact gap, typed.
	partialDir := t.TempDir()
	if _, err := readretry.RunShard(context.Background(), cfg, variants, plan.Shards[0], partialDir); err != nil {
		t.Fatal(err)
	}
	var missing *readretry.SweepMissingCellsError
	if _, err := readretry.MergeShards(cfg, variants, partialDir, nil); !errors.As(err, &missing) {
		t.Fatalf("partial merge returned %v, want *SweepMissingCellsError", err)
	}
	if want := len(plan.Shards[1].Cells) + len(plan.Shards[2].Cells); len(missing.Missing) != want {
		t.Errorf("partial merge reports %d missing cells, want %d", len(missing.Missing), want)
	}
}

func TestFacadeWorkloadRoster(t *testing.T) {
	if got := len(readretry.Workloads()); got != 12 {
		t.Errorf("workloads = %d, want 12", got)
	}
}

func TestFacadeBCH(t *testing.T) {
	code, err := readretry.NewBCH(8, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4}
	parity, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x10
	n, err := code.Decode(data, parity)
	if err != nil || n != 1 || data[0] != 0xDE {
		t.Errorf("decode: n=%d err=%v data[0]=%#x", n, err, data[0])
	}
}

func TestFacadeECCDefaults(t *testing.T) {
	e := readretry.DefaultECC()
	if e.Capability != 72 {
		t.Errorf("capability = %d", e.Capability)
	}
}
