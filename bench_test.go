// Benchmarks: one per reproduced table and figure (regenerating its data at
// reduced scale and reporting the headline quantity as a custom metric),
// plus the ablation benches DESIGN.md §6 calls out and substrate
// micro-benches. Run with:
//
//	go test -bench=. -benchmem
package readretry_test

import (
	"context"
	"io"
	"runtime"
	"testing"

	"readretry/internal/charz"
	"readretry/internal/chip"
	"readretry/internal/core"
	"readretry/internal/ecc"
	"readretry/internal/experiments"
	"readretry/internal/experiments/cellcache"
	"readretry/internal/experiments/shard"
	"readretry/internal/nand"
	"readretry/internal/rng"
	"readretry/internal/rpt"
	"readretry/internal/ssd"
	"readretry/internal/trace"
	"readretry/internal/vth"
	"readretry/internal/workload"
)

// --- Table 1 ---------------------------------------------------------------

func BenchmarkTable1Timing(b *testing.B) {
	tm := nand.DefaultTiming()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, pt := range []nand.PageType{nand.LSB, nand.CSB, nand.MSB} {
			sink += float64(tm.TR(pt, nand.Reduction{Pre: 0.4}))
		}
	}
	b.ReportMetric(tm.AvgTR().Microseconds(), "avg_tR_us")
	_ = sink
}

// --- Table 2 ---------------------------------------------------------------

func BenchmarkTable2Workloads(b *testing.B) {
	spec, err := workload.ByName("mds_1")
	if err != nil {
		b.Fatal(err)
	}
	spec.FootprintPages = 1 << 16
	var recs []trace.Record
	for i := 0; i < b.N; i++ {
		recs = workload.NewGenerator(spec, 1).Generate(20000)
	}
	b.ReportMetric(workload.MeasureReadRatio(recs), "read_ratio")
	b.ReportMetric(workload.MeasureColdRatio(recs), "cold_ratio")
}

// --- Characterization figures ----------------------------------------------

func benchLab(b *testing.B, samples int) *charz.Lab {
	b.Helper()
	return charz.DefaultLab(samples, 1)
}

func BenchmarkFig4bRBERLadder(b *testing.B) {
	lab := benchLab(b, 1500)
	var final int
	for i := 0; i < b.N; i++ {
		s, err := lab.RBERLadder(2000, 12, 18)
		if err != nil {
			b.Fatal(err)
		}
		final = s.ErrorsPerStep[s.StepsNeeded]
	}
	b.ReportMetric(float64(final), "final_step_errors")
}

func BenchmarkFig5RetrySteps(b *testing.B) {
	lab := benchLab(b, 1500)
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = lab.RetrySteps(2000, 12, 30).Mean
	}
	b.ReportMetric(mean, "mean_retry_steps")
}

func BenchmarkFig7ECCMargin(b *testing.B) {
	lab := benchLab(b, 1500)
	var margin int
	for i := 0; i < b.N; i++ {
		pts := lab.FinalStepMargin([]int{2000}, []float64{12}, []float64{30})
		margin = pts[0].Margin
	}
	b.ReportMetric(float64(margin), "margin_bits")
}

func BenchmarkFig8TimingSweep(b *testing.B) {
	lab := benchLab(b, 1500)
	reds := []nand.Reduction{
		{Pre: nand.LevelFraction(6)}, {Pre: nand.LevelFraction(7)}, {Pre: nand.LevelFraction(8)},
	}
	var delta int
	for i := 0; i < b.N; i++ {
		pts := lab.TimingSweep(2000, 12, 85, reds)
		delta = pts[1].DeltaErr
	}
	b.ReportMetric(float64(delta), "dM_at_47pct")
}

func BenchmarkFig9Combined(b *testing.B) {
	lab := benchLab(b, 1500)
	red := []nand.Reduction{{Pre: nand.LevelFraction(8), Disch: nand.LevelFraction(3)}}
	var m int
	for i := 0; i < b.N; i++ {
		m = lab.TimingSweep(1000, 0, 85, red)[0].MErr
	}
	b.ReportMetric(float64(m), "combined_MERR")
}

func BenchmarkFig10Temperature(b *testing.B) {
	lab := benchLab(b, 1500)
	var delta int
	for i := 0; i < b.N; i++ {
		pts := lab.TemperatureSweep(2000, 12, []float64{30}, []int{6})
		delta = pts[0].DeltaErr
	}
	b.ReportMetric(float64(delta), "cold_extra_errors")
}

func BenchmarkFig11RPT(b *testing.B) {
	model := vth.NewModel(vth.DefaultParams(), 1)
	var table *rpt.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = rpt.Profile(model, rpt.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(nand.LevelFraction(table.MinLevel())*100, "min_reduction_pct")
	b.ReportMetric(nand.LevelFraction(table.MaxLevel())*100, "max_reduction_pct")
}

// --- Mechanism figures -------------------------------------------------------

func BenchmarkFig12PR2Latency(b *testing.B) {
	tm := experiments.PaperTimings()
	var saved float64
	for i := 0; i < b.N; i++ {
		base := core.BuildPlan(core.Baseline, 10, tm, core.Options{}).Latency()
		pr := core.BuildPlan(core.PR2, 10, tm, core.Options{}).Latency()
		saved = (base - pr).Microseconds()
	}
	b.ReportMetric(saved, "saved_us_at_N10")
}

func BenchmarkFig13AR2Latency(b *testing.B) {
	tm := experiments.PaperTimings()
	var both float64
	for i := 0; i < b.N; i++ {
		both = core.BuildPlan(core.PnAR2, 10, tm, core.Options{}).Latency().Microseconds()
	}
	b.ReportMetric(both, "pnar2_us_at_N10")
}

// --- System-level figures -----------------------------------------------------

// benchSSDConfig returns a small device for per-iteration simulation.
func benchSSDConfig() ssd.Config {
	cfg := ssd.ExperimentConfig()
	cfg.Geometry.BlocksPerPlane = 24
	cfg.Geometry.PagesPerBlock = 48
	cfg.GCThresholdBlocks = 3
	cfg.PreconditionPages = cfg.TotalPages() * 7 / 10
	return cfg
}

func benchTrace(b *testing.B, cfg ssd.Config, name string, n int) []trace.Record {
	b.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	spec.FootprintPages = cfg.TotalPages() * 6 / 10
	spec.AvgIOPS = 1200
	return workload.NewGenerator(spec, 7).Generate(n)
}

func runScheme(b *testing.B, cfg ssd.Config, recs []trace.Record, s core.Scheme, pso bool) *ssd.Stats {
	b.Helper()
	c := cfg
	c.Scheme = s
	c.UsePSO = pso
	dev, err := ssd.New(c)
	if err != nil {
		b.Fatal(err)
	}
	st, err := dev.Run(recs)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func BenchmarkFig14ResponseTime(b *testing.B) {
	cfg := benchSSDConfig()
	cfg.PEC, cfg.RetentionMonths = 2000, 6
	recs := benchTrace(b, cfg, "YCSB-C", 1000)
	var norm float64
	for i := 0; i < b.N; i++ {
		base := runScheme(b, cfg, recs, core.Baseline, false)
		both := runScheme(b, cfg, recs, core.PnAR2, false)
		norm = both.MeanAll() / base.MeanAll()
	}
	b.ReportMetric(norm, "pnar2_normalized_rt")
}

func BenchmarkFig15PSO(b *testing.B) {
	cfg := benchSSDConfig()
	cfg.PEC, cfg.RetentionMonths = 2000, 12
	recs := benchTrace(b, cfg, "YCSB-C", 1000)
	var gain float64
	for i := 0; i < b.N; i++ {
		pso := runScheme(b, cfg, recs, core.Baseline, true)
		combo := runScheme(b, cfg, recs, core.PnAR2, true)
		gain = 1 - combo.MeanAll()/pso.MeanAll()
	}
	b.ReportMetric(gain*100, "combo_gain_pct")
}

// --- Sweep engine ---------------------------------------------------------------

// benchSweepConfig is a trimmed Figure 14 grid: 3 workloads × 2 conditions
// × 5 variants = 30 independent simulations per iteration, enough fan-out
// for the pool to matter while keeping an iteration in seconds.
func benchSweepConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Requests = 400
	return cfg
}

func BenchmarkSweepSerial(b *testing.B) {
	cfg := benchSweepConfig()
	cfg.Parallelism = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweep(context.Background(), cfg, experiments.Figure14Variants()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "workers")
}

// BenchmarkSweepParallel is BenchmarkSweepSerial on the full worker pool;
// compare ns/op between the two. On GOMAXPROCS≥4 the grid's 30 independent
// cells give the pool near-linear headroom (the serial fraction is one
// trace generation per workload).
func BenchmarkSweepParallel(b *testing.B) {
	cfg := benchSweepConfig()
	cfg.Parallelism = 0 // GOMAXPROCS
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweep(context.Background(), cfg, experiments.Figure14Variants()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkSweepColdCache measures a cache-enabled sweep where every cell
// misses (a fresh cache per iteration): the baseline cost plus key
// derivation and Put overhead. Compare against BenchmarkSweepParallel for
// the cache's cold-path tax and against BenchmarkSweepWarmCache for its
// payoff.
func BenchmarkSweepColdCache(b *testing.B) {
	cfg := benchSweepConfig()
	cfg.Parallelism = 0
	for i := 0; i < b.N; i++ {
		cfg.Cache = cellcache.Memory()
		if _, err := experiments.RunSweep(context.Background(), cfg, experiments.Figure14Variants()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepWarmCache measures a fully cached sweep: every cell is a
// hit, so no simulation or trace generation runs — the per-iteration cost
// is pure engine plumbing (hashing, lookups, resequencing).
func BenchmarkSweepWarmCache(b *testing.B) {
	cfg := benchSweepConfig()
	cfg.Parallelism = 0
	cfg.Cache = cellcache.Memory()
	if _, err := experiments.RunSweep(context.Background(), cfg, experiments.Figure14Variants()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweep(context.Background(), cfg, experiments.Figure14Variants()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepBufferedCSV materializes the Result and then encodes it,
// the pre-streaming shape: the whole grid is held in memory before the
// first CSV byte exists.
func BenchmarkSweepBufferedCSV(b *testing.B) {
	cfg := benchSweepConfig()
	cfg.Parallelism = 0
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSweep(context.Background(), cfg, experiments.Figure14Variants())
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepStreamingCSV emits rows as stripes complete via a CSVSink;
// output is byte-identical to the buffered path but overlaps encoding with
// simulation, so the writer starts seeing rows mid-sweep.
func BenchmarkSweepStreamingCSV(b *testing.B) {
	cfg := benchSweepConfig()
	cfg.Parallelism = 0
	for i := 0; i < b.N; i++ {
		sink, err := experiments.NewCSVSink(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Sink = sink
		if _, err := experiments.RunSweep(context.Background(), cfg, experiments.Figure14Variants()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepTemperatureGrid runs the trimmed grid crossed with three
// operating temperatures — the 3-D PEC × retention × temperature sweep —
// so the trajectory tracks what the temperature axis multiplies the cell
// count by (3× here; the per-cell cost is unchanged, all the added work is
// more cells).
func BenchmarkSweepTemperatureGrid(b *testing.B) {
	cfg := benchSweepConfig()
	cfg.Parallelism = 0
	cfg.Temps = []float64{25, 55, 85}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweep(context.Background(), cfg, experiments.Figure14Variants()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cfg.Temps)), "temps")
}

// BenchmarkSweepQLCGrid runs the trimmed grid crossed with the device axis
// — TLC and QLC presets side by side — so the trajectory tracks both the
// 2× cell count and the genuinely heavier QLC cells: 16-level wordlines
// retry far deeper at the same condition, so a QLC cell simulates more
// retry steps than its TLC twin.
func BenchmarkSweepQLCGrid(b *testing.B) {
	cfg := benchSweepConfig()
	cfg.Parallelism = 0
	cfg.Devices = []ssd.Device{ssd.DeviceTLC, ssd.DeviceQLC16}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweep(context.Background(), cfg, experiments.Figure14Variants()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cfg.Devices)), "devices")
}

// BenchmarkSweepSharded runs the trimmed grid as a 4-shard plan — every
// shard executed back-to-back through the shard subsystem over a shared
// in-memory cache, then merged — versus BenchmarkSweepParallel's direct
// single run. The delta is the distribution layer's whole overhead:
// planning, per-cell content addressing, record assembly, and the
// merge-time re-sequencing plus normalization.
func BenchmarkSweepSharded(b *testing.B) {
	cfg := benchSweepConfig()
	cfg.Parallelism = 0
	variants := experiments.Figure14Variants()
	const shards = 4
	for i := 0; i < b.N; i++ {
		cfg.Cache = cellcache.Memory()
		plan, err := shard.NewPlan(cfg, variants, shards)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range plan.Shards {
			if _, err := shard.Run(context.Background(), cfg, variants, m, ""); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := shard.Merge(cfg, variants, "", cfg.Cache); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(shards, "shards")
}

// --- Ablations (DESIGN.md §6) -------------------------------------------------

func BenchmarkAblationPR2NoReset(b *testing.B) {
	cfg := benchSSDConfig()
	cfg.PEC, cfg.RetentionMonths = 2000, 6
	cfg.Scheme = core.PR2
	recs := benchTrace(b, cfg, "YCSB-A", 1000)
	var penalty float64
	for i := 0; i < b.N; i++ {
		with := runScheme(b, cfg, recs, core.PR2, false)
		noReset := cfg
		noReset.CoreOpts.NoSpeculativeReset = true
		dev, err := ssd.New(noReset)
		if err != nil {
			b.Fatal(err)
		}
		st, err := dev.Run(recs)
		if err != nil {
			b.Fatal(err)
		}
		penalty = st.MeanAll()/with.MeanAll() - 1
	}
	b.ReportMetric(penalty*100, "no_reset_penalty_pct")
}

func BenchmarkAblationAR2PerStepSet(b *testing.B) {
	tm := experiments.PaperTimings()
	var extra float64
	for i := 0; i < b.N; i++ {
		once := core.BuildPlan(core.AR2, 10, tm, core.Options{}).Latency()
		per := core.BuildPlan(core.AR2, 10, tm, core.Options{PerStepSetFeature: true}).Latency()
		extra = (per - once).Microseconds()
	}
	b.ReportMetric(extra, "per_step_set_cost_us")
}

func BenchmarkAblationRPTMargin(b *testing.B) {
	model := vth.NewModel(vth.DefaultParams(), 1)
	var lost float64
	for i := 0; i < b.N; i++ {
		aggressive := rpt.DefaultConfig()
		aggressive.SafetyMarginBits = 0
		a, err := rpt.Profile(model, aggressive)
		if err != nil {
			b.Fatal(err)
		}
		safe, err := rpt.Profile(model, rpt.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		lost = nand.LevelFraction(a.Lookup(2000, 12))*100 -
			nand.LevelFraction(safe.Lookup(2000, 12))*100
	}
	b.ReportMetric(lost, "margin_cost_pct_points")
}

func BenchmarkAblationDischargeShave(b *testing.B) {
	// §5.2.2's conclusion: shaving tDISCH 7 % on top of the tPRE cut buys
	// 1.75 % of tR but can cost up to 5.6 % of the ECC capability.
	model := vth.NewModel(vth.DefaultParams(), 1)
	tm := nand.DefaultTiming()
	cond := vth.Condition{PEC: 2000, RetentionMonths: 12, TempC: 30}
	var costBits float64
	for i := 0; i < b.N; i++ {
		preOnly := nand.Reduction{Pre: nand.LevelFraction(6)}
		withDisch := nand.Reduction{Pre: nand.LevelFraction(6), Disch: nand.LevelFraction(1)}
		costBits = float64(model.MaxTimingPenalty(cond, withDisch) -
			model.MaxTimingPenalty(cond, preOnly))
	}
	b.ReportMetric(costBits, "extra_error_bits")
	b.ReportMetric(tm.TRFraction(nand.Reduction{Disch: nand.LevelFraction(1)})*100, "tR_gain_pct")
}

func BenchmarkAblationScheduler(b *testing.B) {
	cfg := benchSSDConfig()
	cfg.PEC, cfg.RetentionMonths = 1000, 3
	recs := benchTrace(b, cfg, "hm_0", 1500)
	var penalty float64
	for i := 0; i < b.N; i++ {
		with := runScheme(b, cfg, recs, core.Baseline, false)
		plain := cfg
		plain.DisableSuspension = true
		plain.DisableReadPrio = true
		dev, err := ssd.New(plain)
		if err != nil {
			b.Fatal(err)
		}
		st, err := dev.Run(recs)
		if err != nil {
			b.Fatal(err)
		}
		penalty = st.MeanRead()/with.MeanRead() - 1
	}
	b.ReportMetric(penalty*100, "no_sched_read_penalty_pct")
}

// --- §8 extension benches -------------------------------------------------------

func BenchmarkExtensionRegularReads(b *testing.B) {
	// §8 "Latency Reduction for Regular Reads": RPT-safe timing on every
	// initial sensing, measured on a young device where no retries occur.
	cfg := benchSSDConfig()
	cfg.Scheme = core.AR2
	cfg.PEC, cfg.RetentionMonths = 250, 0.2
	recs := benchTrace(b, cfg, "YCSB-C", 1000)
	var gain float64
	for i := 0; i < b.N; i++ {
		plain := runScheme(b, cfg, recs, core.AR2, false)
		ext := cfg
		ext.ReducedRegularReads = true
		dev, err := ssd.New(ext)
		if err != nil {
			b.Fatal(err)
		}
		st, err := dev.Run(recs)
		if err != nil {
			b.Fatal(err)
		}
		gain = 1 - st.MeanRead()/plain.MeanRead()
	}
	b.ReportMetric(gain*100, "clean_read_gain_pct")
}

func BenchmarkExtensionDriftPredictor(b *testing.B) {
	// §8 "Further Reduction of Read-Retry Latency": model-guided ladder
	// start, compared with the PSO history-based baseline.
	cfg := benchSSDConfig()
	cfg.PEC, cfg.RetentionMonths = 2000, 12
	recs := benchTrace(b, cfg, "YCSB-C", 1000)
	var predSteps, psoSteps float64
	for i := 0; i < b.N; i++ {
		pso := runScheme(b, cfg, recs, core.Baseline, true)
		pred := cfg
		pred.UseDriftPredictor = true
		dev, err := ssd.New(pred)
		if err != nil {
			b.Fatal(err)
		}
		st, err := dev.Run(recs)
		if err != nil {
			b.Fatal(err)
		}
		predSteps, psoSteps = st.MeanRetrySteps(), pso.MeanRetrySteps()
	}
	b.ReportMetric(predSteps, "predictor_mean_steps")
	b.ReportMetric(psoSteps, "pso_mean_steps")
}

// --- Substrate micro-benchmarks -------------------------------------------------

func BenchmarkLDPCSoftDecode(b *testing.B) {
	code, err := ecc.NewArrayLDPC(61, 4, 24)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	data := make([]byte, (code.K()+7)/8)
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	if rem := code.K() % 8; rem != 0 {
		data[len(data)-1] &= byte(0xFF << (8 - rem))
	}
	cw, err := code.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		corrupted := append([]byte(nil), cw...)
		for e := 0; e < 6; e++ {
			pos := r.Intn(code.N())
			corrupted[pos/8] ^= 1 << (7 - uint(pos%8))
		}
		b.StartTimer()
		if _, err := code.DecodeSoft(code.HardLLR(corrupted, 2.0), 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadPath measures the steady-state per-read cost of the chip
// read stack (PR 3's tentpole target): one ReadRetry through the
// condition-resident profile fast path versus the preserved direct-model
// reference path. The fast sub-benchmark must stay ≥3× faster with ≤2
// allocs/op (it is allocation-free); scripts/bench.sh records both in
// BENCH_PR3.json.
func BenchmarkReadPath(b *testing.B) {
	bench := func(b *testing.B, fast bool) {
		model := vth.NewModel(vth.DefaultParams(), 1)
		geom := nand.DefaultGeometry()
		c, err := chip.New(geom, nand.DefaultTiming(), model, 0)
		if err != nil {
			b.Fatal(err)
		}
		c.SetFastPath(fast)
		c.SetCondition(2000, 12, 30)
		var reg nand.FeatureRegister
		reg.Set(6, 0, 0)
		c.SetFeature(reg)
		addrs := make([]nand.Address, 64)
		for i := range addrs {
			addrs[i] = nand.Address{
				Plane: i % geom.PlanesPerDie,
				Block: (i * 37) % geom.BlocksPerPlane,
				Page:  (i * 11) % geom.PagesPerBlock,
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		steps := 0
		for i := 0; i < b.N; i++ {
			steps += c.ReadRetry(addrs[i%len(addrs)], 30).RetrySteps
		}
		_ = steps
	}
	b.Run("fast", func(b *testing.B) { bench(b, true) })
	b.Run("slow", func(b *testing.B) { bench(b, false) })
}

// BenchmarkSweepCell measures one full Figure 14 sweep cell at default
// evaluation scale (2,500 requests against the experiment-scale device) —
// the unit of work the sweep engine fans out — through the fast and
// reference read paths. The fast-metrics sub-benchmark is the fast cell
// with per-block retry accounting enabled; its ns/op must stay within 2%
// of plain fast (the metrics layer is two memoized plan lookups and a few
// array writes per read), and scripts/bench.sh records the pair so the
// overhead is checked against BENCH_PR10.json.
func BenchmarkSweepCell(b *testing.B) {
	bench := func(b *testing.B, fast, metrics bool) {
		cfg := ssd.ExperimentConfig()
		cfg.PEC, cfg.RetentionMonths = 2000, 12
		cfg.Scheme = core.PnAR2
		cfg.DisableReadFastPath = !fast
		cfg.RetryMetrics = metrics
		spec, err := workload.ByName("YCSB-C")
		if err != nil {
			b.Fatal(err)
		}
		spec.FootprintPages = cfg.TotalPages() * 6 / 10
		spec.AvgIOPS = 1200 / spec.AvgPagesPerRequest()
		recs := workload.NewGenerator(spec, 7).Generate(2500)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dev, err := ssd.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			st, err := dev.Run(recs)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(st.MeanRetrySteps(), "mean_nrr")
			}
		}
	}
	b.Run("fast", func(b *testing.B) { bench(b, true, false) })
	b.Run("fast-metrics", func(b *testing.B) { bench(b, true, true) })
	b.Run("slow", func(b *testing.B) { bench(b, false, false) })
}

func BenchmarkVthModelRead(b *testing.B) {
	model := vth.NewModel(vth.DefaultParams(), 1)
	cond := vth.Condition{PEC: 2000, RetentionMonths: 12, TempC: 30}
	var steps int
	for i := 0; i < b.N; i++ {
		pg := vth.PageID{Chip: i % 160, Block: i % 120, Page: i % 576}
		steps = model.Read(pg, cond, nand.CSB, nand.Reduction{}).RetrySteps
	}
	_ = steps
}

func BenchmarkBCHEncode(b *testing.B) {
	code, err := ecc.NewBCH(13, 8, 4096)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(data)))
}

func BenchmarkBCHDecode(b *testing.B) {
	code, err := ecc.NewBCH(13, 8, 4096)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	parity, err := code.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		corrupted := append([]byte(nil), data...)
		for e := 0; e < code.T(); e++ {
			pos := r.Intn(code.DataBits())
			corrupted[pos/8] ^= 1 << (7 - uint(pos%8))
		}
		par := append([]byte(nil), parity...)
		b.StartTimer()
		if _, err := code.Decode(corrupted, par); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(data)))
}

func BenchmarkSSDSimulationThroughput(b *testing.B) {
	cfg := benchSSDConfig()
	cfg.PEC, cfg.RetentionMonths = 1000, 6
	recs := benchTrace(b, cfg, "YCSB-B", 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev, err := ssd.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dev.Run(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "requests/op")
}
